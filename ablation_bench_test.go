// Ablation and extension benchmarks for the design choices DESIGN.md calls
// out. These use a reduced 4x4x4 cluster (100 Gbps) so each runs in seconds.
package themis_test

import (
	"fmt"
	"testing"

	"themis"
	"themis/internal/collective"
	"themis/internal/core"
	"themis/internal/packet"
	"themis/internal/sim"
	"themis/internal/workload"
)

func smallCell(lb themis.LBMode) themis.CollectiveConfig {
	return themis.CollectiveConfig{
		Seed:         7,
		Pattern:      collective.RingAllreduce,
		MessageBytes: 1 << 20,
		Leaves:       4,
		Spines:       4,
		HostsPerLeaf: 4,
		Bandwidth:    100e9,
		LB:           lb,
	}
}

// BenchmarkAblation_NoCompensation isolates §3.4: with NACK compensation
// disabled, blocked-but-real losses are only repaired by the sender's RTO.
// Measured under injected loss via a lossy cluster.
func BenchmarkAblation_NoCompensation(b *testing.B) {
	run := func(disable bool) (timeouts uint64, cct sim.Time) {
		cl, err := buildLossyCluster(disable)
		if err != nil {
			b.Fatal(err)
		}
		var end sim.Time
		done := 0
		for i := 0; i < 2; i++ {
			cn := cl.Conn(packet.NodeID(i), packet.NodeID(2+i))
			cn.Send(2<<20, func() {
				done++
				end = cl.Engine.Now()
			})
		}
		cl.Run(10 * sim.Second)
		cl.Engine.RunAll()
		if done != 2 {
			b.Fatal("lossy run incomplete")
		}
		return cl.AggregateSenderStats().Timeouts, end
	}
	for i := 0; i < b.N; i++ {
		toWith, cctWith := run(false)
		toWithout, cctWithout := run(true)
		if i == 0 {
			fmt.Printf("\n# Ablation §3.4: NACK compensation under real loss\n")
			fmt.Printf("compensation on : timeouts=%d cct=%.3fms\n", toWith, cctWith.Seconds()*1e3)
			fmt.Printf("compensation off: timeouts=%d cct=%.3fms\n", toWithout, cctWithout.Seconds()*1e3)
		}
		b.ReportMetric(float64(toWithout), "timeouts-off")
		b.ReportMetric(float64(toWith), "timeouts-on")
	}
}

// BenchmarkAblation_GBNSpray shows the previous-generation (CX-4/5) RNIC
// behaviour the paper's §1 describes: Go-Back-N under spraying collapses.
func BenchmarkAblation_GBNSpray(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scfg := smallCell(themis.RandomSpray)
		scfg.MessageBytes = 4 << 20
		sr, err := themis.RunCollective(scfg)
		if err != nil {
			b.Fatal(err)
		}
		gcfg := scfg
		gcfg.Transport = themis.GoBackN
		gbn, err := themis.RunCollective(gcfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n# Ablation §1: NIC-SR vs Go-Back-N under random packet spraying (allreduce, ms)\n")
			fmt.Printf("nic-sr %.3f (retrans ratio %.4f)\ngbn    %.3f (retrans ratio %.4f)\n",
				sr.TailCCT.Seconds()*1e3, sr.RetransRatio(),
				gbn.TailCCT.Seconds()*1e3, gbn.RetransRatio())
		}
		b.ReportMetric(gbn.TailCCT.Seconds()*1e3/(sr.TailCCT.Seconds()*1e3), "gbn/sr")
	}
}

// BenchmarkAblation_Flowlet shows §2.3: RNIC hardware pacing leaves no
// flowlet gaps, so flowlet switching degenerates to flow-level balancing.
func BenchmarkAblation_Flowlet(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fl, err := themis.RunCollective(smallCell(themis.Flowlet))
		if err != nil {
			b.Fatal(err)
		}
		ec, err := themis.RunCollective(smallCell(themis.ECMP))
		if err != nil {
			b.Fatal(err)
		}
		th, err := themis.RunCollective(smallCell(themis.Themis))
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("\n# Ablation §2.3: flowlet vs ECMP vs Themis (allreduce tail CCT, ms)\n")
			fmt.Printf("flowlet %.3f\necmp    %.3f\nthemis  %.3f\n",
				fl.TailCCT.Seconds()*1e3, ec.TailCCT.Seconds()*1e3, th.TailCCT.Seconds()*1e3)
		}
		b.ReportMetric(fl.TailCCT.Seconds()*1e3, "ms-flowlet")
	}
}

// BenchmarkAblation_QueueFactor sweeps §4's F: an undersized PSN ring evicts
// tPSNs before their NACK returns, forcing conservative forwarding.
func BenchmarkAblation_QueueFactor(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n# Ablation §4: PSN ring capacity factor F (allreduce)\n")
			fmt.Printf("%-6s %12s %12s %12s\n", "F", "cct_ms", "blocked", "scanMisses")
		}
		for _, f := range []float64{0.05, 0.2, 0.5, 1.5, 3.0} {
			cfg := smallCell(themis.Themis)
			cfg.MessageBytes = 4 << 20
			cfg.Spines = 2 // oversubscribed: deeper in-flight windows
			cfg.ThemisCfg = core.Config{QueueFactor: f}
			res, err := themis.RunCollective(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("%-6.2f %12.3f %12d %12d\n", f,
					res.TailCCT.Seconds()*1e3, res.Middleware.NacksBlocked, res.Middleware.ScanMisses)
			}
		}
	}
}

// BenchmarkExt_LinkFailure exercises the §6 failure response: a ToR with a
// failed uplink reverts to ECMP and the collective still completes.
func BenchmarkExt_LinkFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl, err := workload.BuildCluster(workload.ClusterConfig{
			Seed: 7, Leaves: 4, Spines: 4, HostsPerLeaf: 4, Bandwidth: 100e9,
			LB:        workload.Themis,
			ThemisCfg: core.Config{FallbackOnFailure: true},
		})
		if err != nil {
			b.Fatal(err)
		}
		hosts := workload.GroupHosts(4, 4, 0)
		var end sim.Time
		done := false
		collective.RunRingAllreduce(cl.Mesh(hosts), len(hosts), 1<<20, func() {
			done = true
			end = cl.Engine.Now()
		})
		// Fail one of leaf0's uplinks shortly after start; the monitoring
		// plane disables Themis everywhere and routing reconverges.
		cl.Engine.At(sim.Time(20*sim.Microsecond), func() { cl.FailLink(0, 4) })
		cl.Run(10 * sim.Second)
		cl.Engine.RunAll()
		if !done {
			b.Fatal("collective incomplete after link failure")
		}
		if i == 0 {
			st := cl.ThemisStats()
			fmt.Printf("\n# Extension §6: link failure mid-collective (Themis -> ECMP fallback)\n")
			fmt.Printf("cct=%.3fms bypassed=%d sprayed=%d\n", end.Seconds()*1e3, st.Bypassed, st.Sprayed)
		}
		b.ReportMetric(end.Seconds()*1e3, "ms")
	}
}

// BenchmarkExt_Chaos runs a slice of the deterministic fault-injection soak
// (internal/chaos): seeded scenarios mixing link flaps, drop/corruption
// rates, control-plane loss, ToR reboots and blackholes against the hardened
// cluster, asserting the graceful-degradation invariants on every run.
func BenchmarkExt_Chaos(b *testing.B) {
	const seeds = 8
	for i := 0; i < b.N; i++ {
		results, err := themis.ChaosSoak(1, seeds, themis.ChaosOptions{})
		if err != nil {
			b.Fatal(err)
		}
		var end sim.Time
		var retrans, timeouts uint64
		for _, res := range results {
			if len(res.Violations) != 0 {
				b.Fatalf("%v: %v", res.Scenario, res.Violations)
			}
			if res.End > end {
				end = res.End
			}
			retrans += res.Sender.Retransmits
			timeouts += res.Sender.Timeouts
		}
		if i == 0 {
			fmt.Printf("\n# Chaos soak: %d seeded fault scenarios, invariants audited\n", seeds)
			fmt.Printf("worst-case end=%.3fms retransmits=%d timeouts=%d\n",
				end.Seconds()*1e3, retrans, timeouts)
		}
		b.ReportMetric(end.Seconds()*1e3, "worst-ms")
	}
}

// BenchmarkExt_RandomLoss measures recovery with random corruption loss:
// valid NACKs must still pass Themis-D and repair promptly.
func BenchmarkExt_RandomLoss(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cl, err := buildLossyCluster(false)
		if err != nil {
			b.Fatal(err)
		}
		var end sim.Time
		done := 0
		for j := 0; j < 2; j++ {
			cn := cl.Conn(packet.NodeID(j), packet.NodeID(2+j))
			cn.Send(2<<20, func() {
				done++
				end = cl.Engine.Now()
			})
		}
		cl.Run(10 * sim.Second)
		cl.Engine.RunAll()
		if done != 2 {
			b.Fatal("lossy run incomplete")
		}
		if i == 0 {
			agg := cl.AggregateSenderStats()
			st := cl.ThemisStats()
			fmt.Printf("\n# Extension: 1/500 packet loss under Themis spraying\n")
			fmt.Printf("cct=%.3fms retrans=%d timeouts=%d forwarded=%d compensated=%d\n",
				end.Seconds()*1e3, agg.Retransmits, agg.Timeouts, st.NacksForwarded, st.Compensations)
		}
		b.ReportMetric(end.Seconds()*1e3, "ms")
	}
}

// buildLossyCluster wires a 2x4x2 Themis cluster whose fabric drops every
// 500th data packet at the leaves.
func buildLossyCluster(disableComp bool) (*workload.Cluster, error) {
	count := 0
	cl, err := workload.BuildCluster(workload.ClusterConfig{
		Seed: 7, Leaves: 2, Spines: 4, HostsPerLeaf: 2, Bandwidth: 100e9,
		LB:        workload.Themis,
		RTO:       500 * sim.Microsecond,
		ThemisCfg: core.Config{DisableCompensation: disableComp},
	})
	if err != nil {
		return nil, err
	}
	cl.Net.SetLossFunc(func(p *packet.Packet, sw, port int) bool {
		count++
		return count%500 == 0
	})
	return cl, nil
}

// BenchmarkPathMapConstruction measures the offline §3.2 PathMap probe on a
// k=8 fat-tree (16 cross-pod paths).
func BenchmarkPathMapConstruction(b *testing.B) {
	tp, err := themis.BuildCluster(themis.ClusterConfig{Seed: 1, FatTreeK: 8, Bandwidth: 100e9})
	if err != nil {
		b.Fatal(err)
	}
	key := packet.FlowKey{Src: 0, Dst: 127, SPort: 1000, DPort: 4791}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildPathMap(tp.Topo, key, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt_PathSubset sweeps the §6 future-work extension: restricting
// each flow to k of the N equal-cost paths. k=1 degenerates to ECMP-like
// single-path; k=N is full spraying.
func BenchmarkExt_PathSubset(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if i == 0 {
			fmt.Printf("\n# Extension §6: spray width k of N=16 paths (allreduce tail CCT, ms)\n")
			fmt.Printf("%-6s %12s %12s\n", "k", "cct_ms", "blocked")
		}
		for _, k := range []int{1, 2, 4, 8, 16} {
			cfg := themis.CollectiveConfig{
				Seed:         7,
				Pattern:      collective.RingAllreduce,
				MessageBytes: 2 << 20,
				LB:           themis.Themis,
				ThemisCfg:    core.Config{PathSubset: k},
			}
			res, err := themis.RunCollective(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("%-6d %12.3f %12d\n", k,
					res.TailCCT.Seconds()*1e3, res.Middleware.NacksBlocked)
			}
		}
	}
}

// BenchmarkExt_PFC compares lossless (PFC) vs lossy fabric under a true
// 15:1 incast (everyone sends to host 0 at once). ECN needs a feedback RTT
// to throttle senders; during that dead time the burst overflows a shallow
// buffer unless PFC pauses hop-by-hop.
func BenchmarkExt_PFC(b *testing.B) {
	run := func(disablePFC bool) (ms float64, drops, retrans uint64) {
		cl, err := workload.BuildCluster(workload.ClusterConfig{
			Seed: 7, Leaves: 16, Spines: 16, HostsPerLeaf: 1, Bandwidth: 100e9,
			LinkDelay:   5 * sim.Microsecond, // long feedback loop: ECN reacts late
			LB:          workload.Themis,
			BufferBytes: 4 << 20, // PFC headroom fits; the pre-CNP burst does not
			DisablePFC:  disablePFC,
		})
		if err != nil {
			b.Fatal(err)
		}
		done := 0
		var end sim.Time
		for h := 1; h < 16; h++ {
			cl.Conn(packet.NodeID(h), 0).Send(2<<20, func() {
				done++
				end = cl.Engine.Now()
			})
		}
		cl.Run(10 * sim.Second)
		cl.Engine.RunAll()
		if done != 15 {
			b.Fatal("incast incomplete")
		}
		agg := cl.AggregateSenderStats()
		return end.Seconds() * 1e3, cl.Net.Counters().DataDrops, agg.Retransmits
	}
	for i := 0; i < b.N; i++ {
		lossyMs, lossyDrops, lossyRtx := run(true)
		losslessMs, losslessDrops, losslessRtx := run(false)
		if i == 0 {
			fmt.Printf("\n# Extension: PFC (lossless) vs lossy fabric under 15:1 incast\n")
			fmt.Printf("pfc on : cct=%.3fms drops=%d retransmits=%d\n", losslessMs, losslessDrops, losslessRtx)
			fmt.Printf("pfc off: cct=%.3fms drops=%d retransmits=%d\n", lossyMs, lossyDrops, lossyRtx)
		}
		b.ReportMetric(lossyMs/losslessMs, "lossy/lossless")
	}
}
