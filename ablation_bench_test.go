// Ablation and extension benchmarks for the design choices DESIGN.md calls
// out, expressed as declarative scenario grids driven through internal/exp.
// These use a reduced 4x4x4 cluster (100 Gbps) so each runs in seconds.
package themis_test

import (
	"fmt"
	"testing"

	"themis"
	"themis/internal/core"
	"themis/internal/exp"
	"themis/internal/packet"
	"themis/internal/rnic"
	"themis/internal/sim"
	"themis/internal/workload"
)

// BenchmarkAblation_NoCompensation isolates §3.4: with NACK compensation
// disabled, blocked-but-real losses are only repaired by the sender's RTO.
// Measured under injected loss (every 500th data packet dropped).
func BenchmarkAblation_NoCompensation(b *testing.B) {
	grid := exp.LossRecoveryGrid(7) // [compensation on, compensation off]
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		on, off := trials[0], trials[1]
		if i == 0 {
			fmt.Printf("\n# Ablation §3.4: NACK compensation under real loss\n")
			fmt.Printf("compensation on : timeouts=%d cct=%.3fms\n", on.Sender.Timeouts, on.CCTMillis)
			fmt.Printf("compensation off: timeouts=%d cct=%.3fms\n", off.Sender.Timeouts, off.CCTMillis)
		}
		b.ReportMetric(float64(off.Sender.Timeouts), "timeouts-off")
		b.ReportMetric(float64(on.Sender.Timeouts), "timeouts-on")
	}
}

// BenchmarkAblation_GBNSpray shows the previous-generation (CX-4/5) RNIC
// behaviour the paper's §1 describes: Go-Back-N under spraying collapses.
func BenchmarkAblation_GBNSpray(b *testing.B) {
	sr := exp.AblationCell(7, themis.RandomSpray)
	sr.Name = "gbn-spray/nic-sr"
	sr.MessageBytes = 4 << 20
	gbn := sr
	gbn.Name = "gbn-spray/gbn"
	gbn.Transport = rnic.GoBackN
	grid := []exp.Scenario{sr, gbn}
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		if i == 0 {
			fmt.Printf("\n# Ablation §1: NIC-SR vs Go-Back-N under random packet spraying (allreduce, ms)\n")
			fmt.Printf("nic-sr %.3f (retrans ratio %.4f)\ngbn    %.3f (retrans ratio %.4f)\n",
				trials[0].CCTMillis, trials[0].RetransRatio,
				trials[1].CCTMillis, trials[1].RetransRatio)
		}
		b.ReportMetric(trials[1].CCTMillis/trials[0].CCTMillis, "gbn/sr")
	}
}

// BenchmarkAblation_Flowlet shows §2.3: RNIC hardware pacing leaves no
// flowlet gaps, so flowlet switching degenerates to flow-level balancing.
func BenchmarkAblation_Flowlet(b *testing.B) {
	grid := []exp.Scenario{
		exp.AblationCell(7, themis.Flowlet),
		exp.AblationCell(7, themis.ECMP),
		exp.AblationCell(7, themis.Themis),
	}
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		if i == 0 {
			fmt.Printf("\n# Ablation §2.3: flowlet vs ECMP vs Themis (allreduce tail CCT, ms)\n")
			fmt.Printf("flowlet %.3f\necmp    %.3f\nthemis  %.3f\n",
				trials[0].CCTMillis, trials[1].CCTMillis, trials[2].CCTMillis)
		}
		b.ReportMetric(trials[0].CCTMillis, "ms-flowlet")
	}
}

// BenchmarkAblation_QueueFactor sweeps §4's F: an undersized PSN ring evicts
// tPSNs before their NACK returns, forcing conservative forwarding.
func BenchmarkAblation_QueueFactor(b *testing.B) {
	grid := exp.QueueFactorGrid(7, []float64{0.05, 0.2, 0.5, 1.5, 3.0})
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		if i == 0 {
			fmt.Printf("\n# Ablation §4: PSN ring capacity factor F (allreduce)\n")
			fmt.Printf("%-6s %12s %12s %12s\n", "F", "cct_ms", "blocked", "scanMisses")
			for j, t := range trials {
				fmt.Printf("%-6.2f %12.3f %12d %12d\n", grid[j].Themis.QueueFactor,
					t.CCTMillis, t.Middleware.NacksBlocked, t.Middleware.ScanMisses)
			}
		}
	}
}

// BenchmarkExt_LinkFailure exercises the §6 failure response: a ToR with a
// failed uplink reverts to ECMP and the collective still completes.
func BenchmarkExt_LinkFailure(b *testing.B) {
	grid := []exp.Scenario{exp.LinkFailureScenario(7)}
	for i := 0; i < b.N; i++ {
		t := mustTrials(b, benchRunner().Run(grid))[0]
		if i == 0 {
			fmt.Printf("\n# Extension §6: link failure mid-collective (Themis -> ECMP fallback)\n")
			fmt.Printf("cct=%.3fms bypassed=%d sprayed=%d\n", t.CCTMillis, t.Middleware.Bypassed, t.Middleware.Sprayed)
		}
		b.ReportMetric(t.CCTMillis, "ms")
	}
}

// BenchmarkExt_Chaos runs a slice of the deterministic fault-injection soak
// (internal/chaos): seeded scenarios mixing link flaps, drop/corruption
// rates, control-plane loss, ToR reboots and blackholes against the hardened
// cluster, asserting the graceful-degradation invariants on every run.
func BenchmarkExt_Chaos(b *testing.B) {
	const seeds = 8
	grid := exp.ChaosGrid(1, seeds)
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		var worst float64
		var retrans, timeouts uint64
		for _, t := range trials {
			if len(t.Violations) != 0 {
				b.Fatalf("%s: %v", t.Name, t.Violations)
			}
			if t.CCTMillis > worst {
				worst = t.CCTMillis
			}
			retrans += t.Sender.Retransmits
			timeouts += t.Sender.Timeouts
		}
		if i == 0 {
			fmt.Printf("\n# Chaos soak: %d seeded fault scenarios, invariants audited\n", seeds)
			fmt.Printf("worst-case end=%.3fms retransmits=%d timeouts=%d\n", worst, retrans, timeouts)
		}
		b.ReportMetric(worst, "worst-ms")
	}
}

// BenchmarkExt_RandomLoss measures recovery with random corruption loss:
// valid NACKs must still pass Themis-D and repair promptly.
func BenchmarkExt_RandomLoss(b *testing.B) {
	grid := exp.LossRecoveryGrid(7)[:1] // the compensation-on arm
	for i := 0; i < b.N; i++ {
		t := mustTrials(b, benchRunner().Run(grid))[0]
		if i == 0 {
			fmt.Printf("\n# Extension: 1/500 packet loss under Themis spraying\n")
			fmt.Printf("cct=%.3fms retrans=%d timeouts=%d forwarded=%d compensated=%d\n",
				t.CCTMillis, t.Sender.Retransmits, t.Sender.Timeouts,
				t.Middleware.NacksForwarded, t.Middleware.Compensations)
		}
		b.ReportMetric(t.CCTMillis, "ms")
	}
}

// BenchmarkPathMapConstruction measures the offline §3.2 PathMap probe on a
// k=8 fat-tree (16 cross-pod paths). A micro-benchmark of the construction
// algorithm itself, not an experiment — it stays off the harness.
func BenchmarkPathMapConstruction(b *testing.B) {
	tp, err := themis.BuildCluster(themis.ClusterConfig{Seed: 1, FatTreeK: 8, Bandwidth: 100e9})
	if err != nil {
		b.Fatal(err)
	}
	key := packet.FlowKey{Src: 0, Dst: 127, SPort: 1000, DPort: 4791}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildPathMap(tp.Topo, key, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExt_PathSubset sweeps the §6 future-work extension: restricting
// each flow to k of the N equal-cost paths. k=1 degenerates to ECMP-like
// single-path; k=N is full spraying.
func BenchmarkExt_PathSubset(b *testing.B) {
	grid := exp.PathSubsetGrid(7, []int{1, 2, 4, 8, 16})
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		if i == 0 {
			fmt.Printf("\n# Extension §6: spray width k of N=16 paths (allreduce tail CCT, ms)\n")
			fmt.Printf("%-6s %12s %12s\n", "k", "cct_ms", "blocked")
			for j, t := range trials {
				fmt.Printf("%-6d %12.3f %12d\n", grid[j].Themis.PathSubset,
					t.CCTMillis, t.Middleware.NacksBlocked)
			}
		}
	}
}

// BenchmarkExt_PFC compares lossless (PFC) vs lossy fabric under a true
// 15:1 incast (everyone sends to host 0 at once). ECN needs a feedback RTT
// to throttle senders; during that dead time the burst overflows a shallow
// buffer unless PFC pauses hop-by-hop.
func BenchmarkExt_PFC(b *testing.B) {
	cell := exp.Scenario{
		Name:         "pfc/on",
		Workload:     exp.Incast,
		Seed:         7,
		Senders:      15,
		MessageBytes: 2 << 20,
		Bandwidth:    100e9,
		LinkDelay:    5 * sim.Microsecond, // long feedback loop: ECN reacts late
		BufferBytes:  4 << 20,             // PFC headroom fits; the pre-CNP burst does not
		LB:           workload.Themis,
	}
	lossy := cell
	lossy.Name = "pfc/off"
	lossy.DisablePFC = true
	grid := []exp.Scenario{cell, lossy}
	for i := 0; i < b.N; i++ {
		trials := mustTrials(b, benchRunner().Run(grid))
		lossless, lossyT := trials[0], trials[1]
		if i == 0 {
			fmt.Printf("\n# Extension: PFC (lossless) vs lossy fabric under 15:1 incast\n")
			fmt.Printf("pfc on : cct=%.3fms drops=%d retransmits=%d\n",
				lossless.CCTMillis, lossless.Net.DataDrops, lossless.Sender.Retransmits)
			fmt.Printf("pfc off: cct=%.3fms drops=%d retransmits=%d\n",
				lossyT.CCTMillis, lossyT.Net.DataDrops, lossyT.Sender.Retransmits)
		}
		b.ReportMetric(lossyT.CCTMillis/lossless.CCTMillis, "lossy/lossless")
	}
}
