package themis_test

import (
	"fmt"

	"themis"
)

// Example builds a small two-rack Themis cluster, pushes one sprayed RDMA
// message across it and prints the middleware verdicts. Deterministic: the
// seed fixes every packet-level event.
func Example() {
	cl, err := themis.BuildCluster(themis.ClusterConfig{
		Seed:         7,
		Leaves:       2,
		Spines:       4,
		HostsPerLeaf: 1,
		Bandwidth:    100e9,
		LB:           themis.Themis,
	})
	if err != nil {
		panic(err)
	}
	done := false
	cl.Conn(0, 1).Send(1<<20, func() { done = true })
	cl.Run(themis.Second)
	st := cl.AggregateSenderStats()
	fmt.Printf("done=%v retransmits=%d\n", done, st.Retransmits)
	// Output: done=true retransmits=0
}

// ExampleMemoryModel reproduces the paper's §4 worked example.
func ExampleMemoryModel() {
	m := themis.MemoryModel()
	fmt.Printf("%d B per QP, %d B total\n", m.PerQPBytes(), m.TotalBytes())
	// Output: 120 B per QP, 192512 B total
}
