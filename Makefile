GO ?= go

# Minimum statement coverage (percent) over internal/... that `make cover`
# enforces. Measured 88.9% after the timing-wheel/differential-test work
# (2026-08): the floor sits ~9 points under that so honest refactors don't
# trip it, while a wholesale untested subsystem still does.
COVER_FLOOR ?= 80

.PHONY: build test vet lint lint-sarif lint-escapes race race-sim cover fuzz-smoke verify bench bench-smoke bench-shard

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# themis-lint enforces the determinism contract statically: site rules (no
# wall clock, no global rand, no map-order leaks into the event queue, no raw
# PSN comparisons, no bare picosecond literals, no map iteration on TorPipeline
# methods) plus three interprocedural families — nondeterminism taint
# (source→sink paths into scheduling/trace/report/FIB sinks), concurrency
# purity over the deterministic core, and allocation checks on the pinned
# zero-alloc hot paths. Every //lint:* escape must carry a justification.
# Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/themis-lint ./...

# lint-sarif writes the machine-readable report CI uploads as an artifact;
# taint findings carry their full source→sink path as SARIF codeFlows.
lint-sarif:
	$(GO) run ./cmd/themis-lint -sarif themis-lint.sarif ./...

# lint-escapes prints the audit inventory: every active //lint:* directive
# with its recorded justification.
lint-escapes:
	$(GO) run ./cmd/themis-lint -escapes ./...

# The simulator core is single-threaded per shard, but run the whole tree
# under the race detector anyway — it catches accidental goroutine leaks in
# new code.
race:
	$(GO) test -race ./...

# race-sim is the focused race gate for the one package that is genuinely
# concurrent: the shard coordinator's barrier loop, mailboxes and worker pool
# live in internal/sim, so its tests run under -race on every verify even when
# the full-tree race stage is skipped locally.
race-sim:
	$(GO) test -race ./internal/sim/...

# cover gates statement coverage on the simulation packages: the observability
# and fuzz hardening work is only worth keeping if the floor holds.
cover:
	$(GO) test -coverprofile=coverage.out ./internal/...
	@$(GO) tool cover -func=coverage.out | tail -1
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	ok=$$(awk -v t="$$total" -v f="$(COVER_FLOOR)" 'BEGIN {print (t >= f) ? 1 : 0}'); \
	if [ "$$ok" != 1 ]; then \
		echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; \
	fi

# fuzz-smoke gives every fuzz target a short budget — enough to re-check the
# committed corpora and shake out shallow regressions on every merge; long
# fuzz runs stay a manual/background job.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test ./internal/packet/ -run '^$$' -fuzz FuzzPSNCompare -fuzztime $(FUZZTIME)
	$(GO) test ./internal/packet/ -run '^$$' -fuzz FuzzPSNAdd -fuzztime $(FUZZTIME)
	$(GO) test ./internal/core/ -run '^$$' -fuzz FuzzClassifyNACK -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/ -run '^$$' -fuzz FuzzTraceRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sim/ -run '^$$' -fuzz FuzzWheelHeapEquivalence -fuzztime $(FUZZTIME)

# verify is the full pre-merge recipe, staged so the cheap static gates run
# (and fail) before any expensive dynamic stage: the ~4s lint pass proves the
# determinism contract before the race/fuzz stages spend minutes exercising
# it. The explicit sub-makes keep the ordering under `make -j` too.
verify:
	$(MAKE) build
	$(MAKE) vet
	$(MAKE) lint
	$(MAKE) test
	$(MAKE) race-sim
	$(MAKE) race
	$(MAKE) cover
	$(MAKE) fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke is the CI-sized sweep: a 2-seed miniature grid through the
# parallel experiment runner, a 2-seed flow-churn grid exercising the bounded
# flow table (budgeted-relearn / budgeted-ecmp / unbounded arms), a 2-seed
# routing-convergence grid (per-hop delay × spray arm on the distributed
# control plane), a 2-seed space-parallel spray grid, and a 2-seed REPS grid
# (entropy-cache / congestion-aware / relearn / ecmp / flowlet arms across
# chaos, churn and convergence), emitting the BENCH_smoke.json,
# BENCH_churn.json, BENCH_convergence.json, BENCH_spray.json and
# BENCH_reps.json artifacts. The smoke grid then re-runs on the binary-heap
# differential oracle (-sched heap) and cmp asserts the report is
# byte-identical to the timing wheel's — the artifact-level scheduler
# equivalence check, mirrored in-tree by TestGridSchedulerEquivalence.
# Gated by themis-lint so a lint regression fails before any simulation time
# is spent.
bench-smoke: lint
	$(GO) run ./cmd/themis-sim sweep -grid smoke -seeds 2 -parallel 2 -json BENCH_smoke.json
	$(GO) run ./cmd/themis-sim sweep -grid churn -seeds 2 -parallel 2 -json BENCH_churn.json
	$(GO) run ./cmd/themis-sim sweep -grid convergence -seeds 2 -parallel 2 -json BENCH_convergence.json
	$(GO) run ./cmd/themis-sim sweep -grid spray -seeds 2 -parallel 2 -json BENCH_spray.json
	$(GO) run ./cmd/themis-sim sweep -grid reps -seeds 2 -parallel 2 -json BENCH_reps.json
	$(GO) run ./cmd/themis-sim sweep -grid smoke -seeds 2 -parallel 2 -sched heap -json BENCH_smoke_heap.json
	cmp BENCH_smoke.json BENCH_smoke_heap.json
	rm -f BENCH_smoke_heap.json
	$(GO) test -run '^$$' -bench 'BenchmarkFabricForward|BenchmarkFabricThroughput' -benchmem ./internal/fabric/

# bench-shard measures the space-parallel engine's scaling: the k=8 fat-tree
# permutation at 1, 2 and 4 shards (see BenchmarkShardScaling). Numbers are
# recorded in PERF.md; rerun this after touching the coordinator or the
# sharded fabric path.
bench-shard:
	$(GO) test -run '^$$' -bench BenchmarkShardScaling -benchmem ./internal/workload/
