GO ?= go

.PHONY: build test vet race verify bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The chaos and middleware packages are the ones with event-driven callback
# webs; run them under the race detector even though the simulator is
# single-threaded — it catches accidental goroutine leaks in new code.
race:
	$(GO) test -race ./internal/chaos/... ./internal/core/...

# verify is the full pre-merge recipe.
verify: build vet test race

bench:
	$(GO) test -bench=. -benchmem .
