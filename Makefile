GO ?= go

.PHONY: build test vet lint race verify bench bench-smoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# themis-lint enforces simulation determinism (no wall clock, no global rand,
# no map-order leaks into the event queue) and protocol invariants (no raw PSN
# comparisons, no bare picosecond literals). Non-zero exit on any finding.
lint:
	$(GO) run ./cmd/themis-lint ./...

# The simulator is single-threaded, but run the whole tree under the race
# detector anyway — it catches accidental goroutine leaks in new code.
race:
	$(GO) test -race ./...

# verify is the full pre-merge recipe.
verify: build vet lint test race

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke is the CI-sized sweep: a 2-seed miniature grid through the
# parallel experiment runner, emitting the BENCH_smoke.json artifact. Gated
# by themis-lint so a lint regression fails before any simulation time is
# spent.
bench-smoke: lint
	$(GO) run ./cmd/themis-sim sweep -grid smoke -seeds 2 -parallel 2 -json BENCH_smoke.json
